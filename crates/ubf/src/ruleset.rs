//! The nftables/iptables ruleset that feeds the UBF daemon (Appendix):
//! inspect *new* TCP and UDP connections on ports ≥ 1024; let conntrack-
//! established traffic straight through; leave privileged ports to the
//! conventional pre-approved-services policy.

use crate::daemon::{UbfConfig, UbfDaemon, UbfStats};
use crate::obs::UbfPacketStats;
use crate::SharedUserDb;
use eus_simnet::{ConnState, Firewall, HostNet, Proto, RuleMatch, Verdict};

/// The queue number the UBF daemon listens on.
pub const UBF_QUEUE: u16 = 0;

/// First inspected port (everything at or above goes to the daemon).
pub const UBF_INSPECT_FROM: u16 = 1024;

/// Install the UBF rules into a host firewall's INPUT chain.
pub fn install_ubf_rules(fw: &mut Firewall) {
    fw.input.push(
        RuleMatch {
            state: Some(ConnState::Established),
            ..RuleMatch::any()
        },
        Verdict::Accept,
        "conntrack: established/related accept",
    );
    fw.input.push(
        RuleMatch {
            proto: Some(Proto::Tcp),
            dport: Some((UBF_INSPECT_FROM, u16::MAX)),
            state: Some(ConnState::New),
        },
        Verdict::Queue(UBF_QUEUE),
        "ubf: new tcp >=1024 to daemon",
    );
    fw.input.push(
        RuleMatch {
            proto: Some(Proto::Udp),
            dport: Some((UBF_INSPECT_FROM, u16::MAX)),
            state: Some(ConnState::New),
        },
        Verdict::Queue(UBF_QUEUE),
        "ubf: new udp >=1024 to daemon",
    );
    // Policy stays Accept: ports < 1024 are root-managed services covered by
    // the conventional pre-approved PPS ruleset.
}

/// Deploy the full UBF onto one host: rules plus a daemon instance bound to
/// the shared user database. Returns the daemon's statistics handle.
pub fn deploy_ubf(host: &mut HostNet, db: SharedUserDb, config: UbfConfig) -> UbfStats {
    deploy_ubf_observed(host, db, config, UbfPacketStats::disabled())
}

/// Like [`deploy_ubf`], but wire the daemon to a caller-held
/// [`UbfPacketStats`] handle so the judge path's slot counters (packets,
/// cache hits/misses, denies, ident round trips, cache occupancy peak) stay
/// readable — and switchable — after the daemon has moved into the fabric.
pub fn deploy_ubf_observed(
    host: &mut HostNet,
    db: SharedUserDb,
    config: UbfConfig,
    pkt: UbfPacketStats,
) -> UbfStats {
    install_ubf_rules(&mut host.firewall);
    let mut daemon = UbfDaemon::new(db, config);
    daemon.set_packet_stats(pkt);
    let stats = daemon.stats();
    host.set_queue_handler(UBF_QUEUE, Box::new(daemon));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::shared_user_db;
    use eus_simnet::{Fabric, PeerInfo, SocketAddr};
    use eus_simos::{NodeId, UserDb};

    fn cluster() -> (Fabric, SharedUserDb, eus_simos::Uid, eus_simos::Uid) {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let b = db.create_user("b").unwrap();
        let shared = shared_user_db(db);
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(2));
        for n in [NodeId(1), NodeId(2)] {
            let host = f.host_mut(n).unwrap();
            deploy_ubf(host, shared.clone(), UbfConfig::default());
        }
        (f, shared, a, b)
    }

    fn peer(db: &SharedUserDb, uid: eus_simos::Uid) -> PeerInfo {
        PeerInfo::from_cred(&db.read().credentials(uid).unwrap())
    }

    #[test]
    fn end_to_end_same_user_allowed_cross_user_denied() {
        let (mut f, db, a, b) = cluster();
        let pa = peer(&db, a);
        let pb = peer(&db, b);
        f.listen(NodeId(2), Proto::Tcp, 8888, pa).unwrap();

        // Same user connects fine.
        let (conn, setup) = f
            .connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 8888), Proto::Tcp)
            .unwrap();
        assert!(setup > f.latency.base_rtt, "inspection adds latency");
        f.close(conn);

        // Different user is dropped by the daemon.
        let err = f
            .connect(NodeId(1), pb, SocketAddr::new(NodeId(2), 8888), Proto::Tcp)
            .unwrap_err();
        assert!(matches!(
            err,
            eus_simnet::ConnectError::DeniedByDaemon {
                queue: UBF_QUEUE,
                ..
            }
        ));
    }

    #[test]
    fn privileged_ports_bypass_inspection() {
        let (mut f, db, a, _) = cluster();
        let root = PeerInfo::from_cred(&eus_simos::Credentials::root());
        f.listen(NodeId(2), Proto::Tcp, 22, root).unwrap();
        let pa = peer(&db, a);
        let (_, setup) = f
            .connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 22), Proto::Tcp)
            .unwrap();
        assert_eq!(setup, f.latency.base_rtt, "port 22 not queued");
        assert_eq!(f.metrics.queued_packets.get(), 0);
    }

    #[test]
    fn udp_also_inspected() {
        let (mut f, db, a, b) = cluster();
        let pa = peer(&db, a);
        let pb = peer(&db, b);
        f.listen(NodeId(2), Proto::Udp, 5001, pa).unwrap();
        assert!(f
            .connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 5001), Proto::Udp)
            .is_ok());
        assert!(f
            .connect(NodeId(1), pb, SocketAddr::new(NodeId(2), 5001), Proto::Udp)
            .is_err());
    }

    #[test]
    fn packet_slots_read_back_after_deploy() {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let b = db.create_user("b").unwrap();
        let shared = shared_user_db(db);
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(2));
        let pkt = UbfPacketStats::new(true);
        deploy_ubf_observed(
            f.host_mut(NodeId(2)).unwrap(),
            shared.clone(),
            UbfConfig::default(),
            pkt.clone(),
        );
        let pa = peer(&shared, a);
        let pb = peer(&shared, b);
        f.listen(NodeId(2), Proto::Tcp, 9999, pa).unwrap();
        // Miss, hit, deny.
        f.connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 9999), Proto::Tcp)
            .unwrap();
        f.connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 9999), Proto::Tcp)
            .unwrap();
        f.connect(NodeId(1), pb, SocketAddr::new(NodeId(2), 9999), Proto::Tcp)
            .unwrap_err();
        let s = pkt.stats();
        assert_eq!(s.value(pkt.s_packets), 3);
        assert_eq!(s.value(pkt.s_cache_hits), 1);
        assert_eq!(s.value(pkt.s_cache_misses), 2);
        assert_eq!(s.value(pkt.s_ident_rtts), 2);
        assert_eq!(s.value(pkt.s_denies), 1);
        assert_eq!(s.value(pkt.s_occupancy_peak), 2);
        assert!((pkt.cache_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quiet_deploy_records_nothing() {
        let (mut f, db, a, _) = cluster();
        let pa = peer(&db, a);
        f.listen(NodeId(2), Proto::Tcp, 8888, pa).unwrap();
        f.connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 8888), Proto::Tcp)
            .unwrap();
        // The default deploy wires a disabled handle; nothing accumulates.
        let pkt = UbfPacketStats::disabled();
        assert_eq!(pkt.stats().total(), 0);
        assert!(!pkt.enabled());
    }

    #[test]
    fn stats_handle_reads_back() {
        let mut db = UserDb::new();
        let a = db.create_user("a").unwrap();
        let shared = shared_user_db(db);
        let mut f = Fabric::new();
        f.add_host(NodeId(1));
        f.add_host(NodeId(2));
        let stats = deploy_ubf(
            f.host_mut(NodeId(2)).unwrap(),
            shared.clone(),
            UbfConfig::default(),
        );
        let pa = peer(&shared, a);
        f.listen(NodeId(2), Proto::Tcp, 9999, pa).unwrap();
        f.connect(NodeId(1), pa, SocketAddr::new(NodeId(2), 9999), Proto::Tcp)
            .unwrap();
        assert_eq!(stats.lock().allowed_same_user.get(), 1);
    }
}
