//! The UBF decision rule (paper Sec. IV-D + Appendix):
//!
//! > "The ruleset implemented only permits a connection when the connecting
//! > and listening processes are running as the same user, or the connecting
//! > process is a member of the primary group (egid) of the listening
//! > process."
//!
//! The egid opt-in is what makes project-shared services work: a user runs
//! `newgrp proj` (or `sg proj -c ...`) before starting their server, and
//! every member of `proj` may then connect.

use eus_simnet::PeerInfo;
use eus_simos::UserDb;
use std::fmt;

/// Why a connection was allowed or denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Same uid on both ends.
    AllowSameUser,
    /// Connector is a member of the listener's effective gid.
    AllowGroupMember,
    /// One endpoint is a root-owned system service; host services are
    /// pre-approved by the PPS portion of the ruleset.
    AllowSystemService,
    /// No relationship between the endpoints.
    Deny,
}

impl Decision {
    /// Is this an allow?
    pub fn allowed(self) -> bool {
        !matches!(self, Decision::Deny)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Decision::AllowSameUser => "allow (same user)",
            Decision::AllowGroupMember => "allow (group member)",
            Decision::AllowSystemService => "allow (system service)",
            Decision::Deny => "deny",
        })
    }
}

/// Policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UbfPolicy {
    /// Honor the listener-egid group opt-in (paper default: yes).
    pub group_optin: bool,
}

impl Default for UbfPolicy {
    fn default() -> Self {
        UbfPolicy { group_optin: true }
    }
}

// analyze:hot-path-begin(ubf-decide)
/// Decide a (initiator → listener) connection against the user database.
pub fn decide(
    policy: &UbfPolicy,
    db: &UserDb,
    initiator: &PeerInfo,
    listener: &PeerInfo,
) -> Decision {
    if initiator.is_root() || listener.is_root() {
        return Decision::AllowSystemService;
    }
    if initiator.uid == listener.uid {
        return Decision::AllowSameUser;
    }
    if policy.group_optin && db.is_member(initiator.uid, listener.egid) {
        return Decision::AllowGroupMember;
    }
    Decision::Deny
}
// analyze:hot-path-end

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simos::{Credentials, Pid, Uid};

    fn setup() -> (UserDb, Uid, Uid, Uid, eus_simos::Gid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let bob = db.create_user("bob").unwrap();
        let carol = db.create_user("carol").unwrap();
        let proj = db.create_project_group("proj", alice).unwrap();
        db.add_to_group(alice, proj, bob).unwrap();
        (db, alice, bob, carol, proj)
    }

    fn peer(db: &UserDb, uid: Uid) -> PeerInfo {
        PeerInfo::from_cred(&db.credentials(uid).unwrap())
    }

    #[test]
    fn same_user_allowed() {
        let (db, alice, ..) = setup();
        let p = peer(&db, alice);
        assert_eq!(
            decide(&UbfPolicy::default(), &db, &p, &p),
            Decision::AllowSameUser
        );
    }

    #[test]
    fn stranger_denied() {
        let (db, alice, _, carol, _) = setup();
        let a = peer(&db, alice);
        let c = peer(&db, carol);
        assert_eq!(decide(&UbfPolicy::default(), &db, &c, &a), Decision::Deny);
        assert_eq!(decide(&UbfPolicy::default(), &db, &a, &c), Decision::Deny);
    }

    #[test]
    fn group_optin_requires_listener_egid() {
        let (db, alice, bob, _, proj) = setup();
        // Alice listens with her default egid (her UPG): bob denied even
        // though they share `proj` — sharing requires the explicit opt-in.
        let a_default = peer(&db, alice);
        let b = peer(&db, bob);
        assert_eq!(
            decide(&UbfPolicy::default(), &db, &b, &a_default),
            Decision::Deny
        );
        // Alice runs `newgrp proj` and restarts her listener: bob allowed.
        let a_proj =
            PeerInfo::from_cred(&db.newgrp(&db.credentials(alice).unwrap(), proj).unwrap());
        assert_eq!(
            decide(&UbfPolicy::default(), &db, &b, &a_proj),
            Decision::AllowGroupMember
        );
        // Carol (not in proj) still denied.
        let carol = db.user_by_name("carol").unwrap().uid;
        let c = peer(&db, carol);
        assert_eq!(
            decide(&UbfPolicy::default(), &db, &c, &a_proj),
            Decision::Deny
        );
    }

    #[test]
    fn group_optin_can_be_disabled() {
        let (db, alice, bob, _, proj) = setup();
        let a_proj =
            PeerInfo::from_cred(&db.newgrp(&db.credentials(alice).unwrap(), proj).unwrap());
        let b = peer(&db, bob);
        let strict = UbfPolicy { group_optin: false };
        assert_eq!(decide(&strict, &db, &b, &a_proj), Decision::Deny);
    }

    #[test]
    fn system_services_allowed() {
        let (db, alice, ..) = setup();
        let root = PeerInfo::with_pid(&Credentials::root(), Pid(1));
        let a = peer(&db, alice);
        assert!(decide(&UbfPolicy::default(), &db, &root, &a).allowed());
        assert!(decide(&UbfPolicy::default(), &db, &a, &root).allowed());
    }

    #[test]
    fn decision_display() {
        assert_eq!(Decision::Deny.to_string(), "deny");
        assert!(Decision::AllowSameUser.allowed());
        assert!(!Decision::Deny.allowed());
    }
}
