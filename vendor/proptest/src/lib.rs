//! Offline shim for `proptest`: deterministic generate-and-check property
//! testing with the API subset this workspace uses — `proptest!`,
//! `prop_assert*`, `prop_oneof!`, `Strategy` with `prop_map`/`prop_filter`,
//! range and char-class-regex strategies, tuples, `Just`, `any::<T>()`, and
//! `collection::vec`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! generated inputs directly) and a fixed per-test deterministic seed derived
//! from the test's module path, so failures reproduce exactly across runs.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}
