//! Option strategies: `of(inner)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Strategy for `Option<T>`: `None` roughly a quarter of the time.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` values from `inner`, mixed with `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(11);
        let s = of(0u8..10);
        let (mut nones, mut somes) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng) {
                None => nones += 1,
                Some(v) => {
                    assert!(v < 10);
                    somes += 1;
                }
            }
        }
        assert!(nones > 0 && somes > 0);
    }
}
