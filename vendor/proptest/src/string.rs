//! A tiny char-class regex generator: supports patterns that are sequences
//! of `[...]` classes (with `a-z` ranges) or literal characters, each with an
//! optional `{n}` / `{m,n}` repetition — the shapes used by this workspace's
//! property tests.

use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed char class in pattern `{pattern}`"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty char class in `{pattern}`");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional repetition {n} or {m,n}.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition min"),
                    n.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in `{pattern}`");
        atoms.push((atom, min, max));
    }
    atoms
}

/// Generate a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse(pattern) {
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition_matches_shape() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..500 {
            let s = generate_matching("[a-zA-Z0-9._-]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
        }
    }

    #[test]
    fn zero_length_allowed() {
        let mut rng = TestRng::from_seed(6);
        let mut saw_empty = false;
        for _ in 0..200 {
            let s = generate_matching("[ab]{0,2}", &mut rng);
            assert!(s.len() <= 2);
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty);
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("x{3}", &mut rng), "xxx");
    }
}
