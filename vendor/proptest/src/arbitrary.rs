//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one value from the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::from_seed(1);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
