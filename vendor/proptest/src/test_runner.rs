//! Runner configuration, failure type, and the deterministic RNG backing
//! every strategy in the shim.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected draws per `prop_filter` before the generator panics.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

/// Why a property case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator. Each test derives its seed from its
/// module path + name, so runs are reproducible and independent.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::for_test("mod::t1");
        let mut b = TestRng::for_test("mod::t1");
        let mut c = TestRng::for_test("mod::t2");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
