//! The `Strategy` trait and the combinators/primitive strategies the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests. The shim generates without
/// shrinking; failing cases report their generated inputs directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying the predicate (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..65_536 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 65536 consecutive draws",
            self.whence
        );
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// From a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

/// Char-class regex strategies for `&'static str` patterns like
/// `"[a-z0-9._-]{1,24}"` (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_filter() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u8..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((10..24).contains(&v));
        }
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
