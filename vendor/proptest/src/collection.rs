//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// Accepted size specifications for [`fn@vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for vectors whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `size.into()` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(Just(7u8), 1..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
