//! Offline shim for the `rand` crate: the subset of the 0.8 API this
//! workspace uses, backed by xoshiro256++ (seeded via splitmix64).
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched; this shim keeps the same call sites (`StdRng`, `SeedableRng`,
//! `Rng::gen`, `Rng::gen_range`) and deterministic per-seed streams.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with uniform bits.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "natural" distribution (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges drawable to a `T` (the shim's stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draw uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, span)` via rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level draws, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draw a value from its natural distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, per the xoshiro authors'
            // recommendation; guarantees a nonzero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let w: usize = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
