//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the parking_lot
//! calling convention (no lock poisoning, guards from `lock`/`read`/`write`),
//! implemented over `std::sync`. Panics while holding a lock abort the wait
//! chain exactly as parking_lot's poison-free semantics would mask, which is
//! acceptable for this deterministic simulation workspace.
//!
//! # Lock-order checking (`--cfg lock_order_check`)
//!
//! Built with `RUSTFLAGS="--cfg lock_order_check"`, every acquisition is
//! recorded in a per-thread held stack and a process-global order graph:
//! observing thread-side order A→B adds the edge A→B, and an acquisition
//! that would close a cycle (B held while taking A after A→B was ever
//! observed, on *any* thread) panics with a `lock order violation` message
//! *before* blocking — so latent deadlocks surface deterministically even
//! in runs where the interleaving never actually deadlocks. Shared (read)
//! re-acquisition of a lock this thread already holds shared is permitted,
//! matching real parking_lot; any other same-lock re-entry is reported as a
//! self-deadlock. The checker costs one atomic load per acquisition when
//! the graph is warm; without the cfg it compiles away entirely.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(lock_order_check)]
use std::sync::atomic::AtomicUsize;

#[cfg(lock_order_check)]
mod order {
    //! The dynamic lock-order checker: per-thread acquisition stacks feeding
    //! a global ordering graph, cycle-checked on every edge insertion.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Ids start at 1 so 0 can mean "not yet assigned" in each lock's slot.
    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

    /// Lazily assign a process-unique id to a lock (CAS so the first
    /// concurrent acquirer wins and everyone agrees).
    pub(crate) fn lock_id(slot: &AtomicUsize) -> usize {
        let cur = slot.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }

    #[derive(Clone, Copy)]
    struct Held {
        id: usize,
        shared: bool,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Observed acquisition orders: an edge a→b means some thread held `a`
    /// while acquiring `b`. Guarded by a `std::sync::Mutex` directly (never
    /// a shim lock — the checker must not recurse into itself).
    fn graph() -> &'static Mutex<HashMap<usize, HashSet<usize>>> {
        static GRAPH: OnceLock<Mutex<HashMap<usize, HashSet<usize>>>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Is `to` reachable from `from` along observed edges?
    fn reaches(g: &HashMap<usize, HashSet<usize>>, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = g.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Record that the current thread is about to acquire lock `id`.
    /// Panics (before the caller blocks) on same-lock re-entry that is not
    /// shared/shared, or on an acquisition that closes an order cycle.
    pub(crate) fn acquire(id: usize, shared: bool) -> HeldToken {
        HELD.with(|cell| {
            let outer: Vec<Held> = cell.borrow().clone();
            for h in &outer {
                if h.id == id {
                    if shared && h.shared {
                        continue; // read-read re-entrancy is legal
                    }
                    panic!(
                        "lock order violation: self-deadlock — thread re-enters lock #{id} \
                         it already holds ({} then {})",
                        mode(h.shared),
                        mode(shared)
                    );
                }
            }
            if !outer.is_empty() {
                let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                for h in &outer {
                    if h.id == id {
                        continue;
                    }
                    if reaches(&g, id, h.id) {
                        panic!(
                            "lock order violation: acquiring lock #{id} while holding \
                             lock #{held}, but the order #{id} -> #{held} was observed \
                             earlier — a deadlock-prone inversion",
                            held = h.id
                        );
                    }
                    g.entry(h.id).or_default().insert(id);
                }
            }
            cell.borrow_mut().push(Held { id, shared });
        });
        HeldToken { id }
    }

    fn mode(shared: bool) -> &'static str {
        if shared {
            "shared"
        } else {
            "exclusive"
        }
    }

    /// Proof of a recorded acquisition; dropping it pops the record. Stored
    /// after the real guard in each wrapper so the lock is released first.
    pub(crate) struct HeldToken {
        id: usize,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            // try_with: the thread-local may already be gone during thread
            // teardown, and an unwind must not turn into a double panic.
            let _ = HELD.try_with(|cell| {
                let mut held = cell.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }
}

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(lock_order_check)]
    order_id: AtomicUsize,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(lock_order_check)]
            order_id: AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lock_order_check)]
        let token = order::acquire(order::lock_id(&self.order_id), false);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            #[cfg(lock_order_check)]
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard from [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(lock_order_check)]
    _token: order::HeldToken,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader–writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(lock_order_check)]
    order_id: AtomicUsize,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(lock_order_check)]
            order_id: AtomicUsize::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lock_order_check)]
        let token = order::acquire(order::lock_id(&self.order_id), true);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            #[cfg(lock_order_check)]
            _token: token,
        }
    }

    /// Acquire exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lock_order_check)]
        let token = order::acquire(order::lock_id(&self.order_id), false);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            #[cfg(lock_order_check)]
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(v) => f.debug_tuple("RwLock").field(&&*v).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII shared guard from [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(lock_order_check)]
    _token: order::HeldToken,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// RAII exclusive guard from [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(lock_order_check)]
    _token: order::HeldToken,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

#[cfg(all(test, lock_order_check))]
mod order_tests {
    use super::*;

    #[test]
    fn consistent_nesting_is_quiet() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 0);
        }
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn inverted_acquisition_order_panics() {
        let a = Mutex::new(0u32);
        let b = RwLock::new(0u32);
        {
            let _ga = a.lock();
            let _gb = b.read(); // establishes a → b
        }
        let _gb = b.write();
        let _ga = a.lock(); // b → a closes the cycle: must panic, not hang
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn transitive_inversion_panics() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a → b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b → c
        }
        let _gc = c.lock();
        let _ga = a.lock(); // c → a closes a → b → c → a
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn same_lock_reentry_is_self_deadlock() {
        let m = Mutex::new(0u32);
        let _g1 = m.lock();
        let _g2 = m.lock(); // would deadlock for real; checker reports it
    }

    #[test]
    fn cross_thread_order_is_global() {
        // Thread 1 observes a → b; thread 2's b → a is an inversion even
        // though thread 2 never saw the first ordering itself.
        let a = std::sync::Arc::new(Mutex::new(()));
        let b = std::sync::Arc::new(Mutex::new(()));
        {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }
        let inverted = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join();
        assert!(inverted.is_err(), "cross-thread inversion must panic");
    }
}
