//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the parking_lot
//! calling convention (no lock poisoning, guards from `lock`/`read`/`write`),
//! implemented over `std::sync`. Panics while holding a lock abort the wait
//! chain exactly as parking_lot's poison-free semantics would mask, which is
//! acceptable for this deterministic simulation workspace.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader–writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(v) => f.debug_tuple("RwLock").field(&&*v).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
