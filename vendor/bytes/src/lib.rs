//! Offline shim for `bytes`: a cheaply-clonable, immutable byte container
//! with the subset of the `Bytes` API this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Reference-counted immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copied; the shim has no zero-copy static path).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        let v = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
        assert_eq!(v.clone(), v);
    }
}
