//! Offline shim for `criterion`: the benchmarking entry points this
//! workspace's benches use, with a small adaptive timing loop instead of
//! criterion's full statistical machinery. Each benchmark prints a single
//! `name ... time: [median per iter]` line.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation (printed alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything accepted where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchName {
    /// Render to the printed id.
    fn into_bench_name(self) -> String;
}

impl IntoBenchName for &str {
    fn into_bench_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchName for String {
    fn into_bench_name(self) -> String {
        self
    }
}

impl IntoBenchName for BenchmarkId {
    fn into_bench_name(self) -> String {
        self.name
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time a closure: warm up briefly, then run batches until ~50 ms of
    /// samples accumulate, recording total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }

    fn per_iter(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters_done as u32
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per = b.per_iter();
    let extra = match throughput {
        Some(Throughput::Bytes(n)) if per.as_nanos() > 0 => {
            let gib_s = n as f64 / per.as_secs_f64() / (1u64 << 30) as f64;
            format!("  thrpt: {gib_s:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if per.as_nanos() > 0 => {
            let elem_s = n as f64 / per.as_secs_f64();
            format!("  thrpt: {elem_s:.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} time: {:>12}/iter  ({} iters){extra}",
        fmt_duration(per),
        b.iters_done
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchName,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_name());
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchName,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_name());
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchName,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_bench_name(), None, &mut f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }
}

impl fmt::Debug for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Criterion")
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
