//! Offline shim for `rayon`: the `par_iter().map().collect()` /
//! `into_par_iter().map().collect()` pipelines this workspace uses, executed
//! on `std::thread::scope` with a shared work queue. Collection order is
//! index-preserving, exactly like rayon's ordered collect.

use std::sync::Mutex;

fn run_indexed<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results.lock().unwrap().push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// A borrowed parallel iterator (pre-`map`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item; the closure runs on worker threads.
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped borrowed parallel iterator (pre-`collect`).
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Execute in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items.iter().collect(), |t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// An owned parallel iterator (pre-`map`).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Map each item; the closure runs on worker threads.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> IntoParMap<T, F> {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped owned parallel iterator (pre-`collect`).
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> IntoParMap<T, F> {
    /// Execute in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items, self.f).into_iter().collect()
    }
}

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    use super::{IntoParIter, ParIter};

    /// `.par_iter()` on borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type.
        type Item: 'data;

        /// Iterate in parallel over borrowed items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;

        /// Consume into a parallel iterator.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        fn into_par_iter(self) -> IntoParIter<u64> {
            IntoParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let v: Vec<u64> = (0..500).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * 3).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3).collect();
        assert_eq!(par, seq);
        let owned: Vec<u64> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, (1..501).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_work_actually_runs_on_many_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        // With >= 2 cores the queue is drained by several workers.
        if std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            >= 2
        {
            assert!(seen.lock().unwrap().len() >= 2);
        }
    }
}
