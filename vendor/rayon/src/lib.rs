//! Offline shim for `rayon`: the `par_iter().map().collect()` /
//! `into_par_iter().map().collect()` pipelines this workspace uses, executed
//! on `std::thread::scope` with a shared work queue. Collection order is
//! index-preserving, exactly like rayon's ordered collect.

use std::sync::Mutex;

/// Worker count used by the implicit (`par_iter`-style) entry points:
/// the `RAYON_THREADS` environment variable when set to a positive
/// integer, else `available_parallelism`.
pub fn default_threads() -> usize {
    match std::env::var("RAYON_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    }
}

/// Fan `items` out over exactly `threads` OS workers (clamped to the item
/// count; `<= 1` runs inline) and collect results in input order. This is
/// the explicit-width entry the scheduler shards use: callers that need a
/// *per-call* thread count (e.g. two engines at different widths driven in
/// lockstep from one process) cannot use a process-global knob.
pub fn with_threads<T: Send, R: Send, F: Fn(T) -> R + Sync>(
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Vec<R> {
    run_width(threads, items, f)
}

fn run_indexed<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    run_width(default_threads(), items, f)
}

fn run_width<T: Send, R: Send, F: Fn(T) -> R + Sync>(
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results.lock().unwrap().push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// A borrowed parallel iterator (pre-`map`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item; the closure runs on worker threads.
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped borrowed parallel iterator (pre-`collect`).
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Execute in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items.iter().collect(), |t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// An owned parallel iterator (pre-`map`).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Map each item; the closure runs on worker threads.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> IntoParMap<T, F> {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped owned parallel iterator (pre-`collect`).
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> IntoParMap<T, F> {
    /// Execute in parallel and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_indexed(self.items, self.f).into_iter().collect()
    }
}

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    use super::{IntoParIter, ParIter};

    /// `.par_iter()` on borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type.
        type Item: 'data;

        /// Iterate in parallel over borrowed items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// `.into_par_iter()` on owned collections.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;

        /// Consume into a parallel iterator.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        fn into_par_iter(self) -> IntoParIter<u64> {
            IntoParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let v: Vec<u64> = (0..500).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * 3).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 3).collect();
        assert_eq!(par, seq);
        let owned: Vec<u64> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, (1..501).collect::<Vec<u64>>());
    }

    #[test]
    fn with_threads_is_order_preserving_at_every_width() {
        let v: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * 7 + 1).collect();
        for width in [1usize, 2, 4, 8, 64] {
            let par = super::with_threads(width, v.clone(), |x| x * 7 + 1);
            assert_eq!(par, seq, "width {width}");
        }
    }

    #[test]
    fn with_threads_spawns_requested_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = super::with_threads(4, (0..64usize).collect(), |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        // Explicit width spawns real OS threads even on a 1-core host.
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn parallel_work_actually_runs_on_many_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        // With >= 2 cores the queue is drained by several workers.
        if std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            >= 2
        {
            assert!(seen.lock().unwrap().len() >= 2);
        }
    }
}
