//! # hpc-user-separation
//!
//! Reproduction of *"HPC with Enhanced User Separation"* (Prout et al., MIT
//! Lincoln Laboratory Supercomputing Center, 2024): a simulated multi-tenant
//! HPC cluster in which every mechanism from the paper is implemented and
//! measurable — `hidepid`/`seepid`, Slurm `PrivateData` and whole-node
//! user-based scheduling, `pam_slurm`, the File Permission Handler (`smask`
//! kernel patches + PAM module + `smask_relax`), the User-Based Firewall,
//! the authenticated web portal, scheduler-managed GPU device permissions
//! with epilog scrubbing, Apptainer-style containers with host security
//! passthrough, and the companion paper's federated identity plane
//! (short-lived broker-issued credentials replacing raw-uid trust and
//! long-lived keys; see [`eus_core::fedauth`]).
//!
//! This crate is a facade over the workspace; see [`eus_core`] for the
//! primary API ([`SecureCluster`], [`SeparationConfig`], [`audit`]).
//!
//! ```
//! use hpc_user_separation::{audit, ClusterSpec, SeparationConfig};
//!
//! // Stock Linux + Slurm leaks broadly; the paper's configuration leaks
//! // only the three residual paths it names.
//! let baseline = audit::run_audit(&SeparationConfig::baseline(), &ClusterSpec::tiny());
//! let llsc = audit::run_audit(&SeparationConfig::llsc(), &ClusterSpec::tiny());
//! assert!(baseline.open_count() > llsc.open_count());
//! assert!(llsc.only_expected_residuals());
//! ```

pub use eus_core::*;
